module Obs = Bose_obs.Obs
module Lint = Bose_lint.Lint

type t = { passes : Pass.t list }

let make passes =
  (* A registry must be executable front to back: producers unique,
     every dependency produced by an earlier pass. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (p : Pass.t) ->
       let same_name =
         List.filter (fun (q : Pass.t) -> q.Pass.name = p.Pass.name) passes
       in
       if List.length same_name > 1 then
         invalid_arg ("Pipeline.make: duplicate pass name " ^ p.Pass.name);
       List.iter
         (fun k ->
            if not (Hashtbl.mem seen k) then
              invalid_arg
                ("Pipeline.make: pass " ^ p.Pass.name ^ " depends on an artifact no \
                  earlier pass produces"))
         p.Pass.depends;
       if Hashtbl.mem seen p.Pass.produces then
         invalid_arg ("Pipeline.make: two passes produce the artifact of " ^ p.Pass.name);
       Hashtbl.add seen p.Pass.produces ())
    passes;
  { passes }

let default = make [ Pass.embed; Pass.map; Pass.decompose; Pass.dropout ]

let passes t = t.passes
let names t = List.map (fun (p : Pass.t) -> p.Pass.name) t.passes
let find t name = List.find_opt (fun (p : Pass.t) -> p.Pass.name = name) t.passes

(* Dependency names resolved against a pass list: kind -> the name of
   the pass in [among] producing it (absent when that pass is disabled
   — its artifact then comes from [skip], outside the pass system). *)
let dep_names among (p : Pass.t) =
  List.filter_map
    (fun k ->
       List.find_map
         (fun (q : Pass.t) -> if q.Pass.produces = k then Some q.Pass.name else None)
         among)
    p.Pass.depends

(* ------------------------------------------------------------------ *)
(* Fingerprint-keyed artifact cache: bounded LRU, deep-copying on both
   insert and hit (see Pass.copy_artifact). Eviction scans for the
   least-recent tick — O(capacity), trivial next to any pass body.     *)

module Cache = struct
  type entry = { mutable last_use : int; artifact : Pass.artifact }

  type t = {
    capacity : int;
    tbl : (string, entry) Hashtbl.t;
    mutable tick : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  type stats = {
    hits : int;
    misses : int;
    entries : int;
    evictions : int;
    capacity : int;
  }

  let create ?(capacity = 256) () =
    if capacity < 1 then invalid_arg "Pipeline.Cache.create: capacity must be positive";
    { capacity; tbl = Hashtbl.create 64; tick = 0; hits = 0; misses = 0; evictions = 0 }

  let clear c =
    Hashtbl.reset c.tbl;
    c.tick <- 0

  let stats (c : t) =
    {
      hits = c.hits;
      misses = c.misses;
      entries = Hashtbl.length c.tbl;
      evictions = c.evictions;
      capacity = c.capacity;
    }

  let find c key =
    match Hashtbl.find_opt c.tbl key with
    | Some e ->
      c.tick <- c.tick + 1;
      e.last_use <- c.tick;
      c.hits <- c.hits + 1;
      Some (Pass.copy_artifact e.artifact)
    | None ->
      c.misses <- c.misses + 1;
      None

  let evict_lru c =
    let victim =
      Hashtbl.fold
        (fun key e acc ->
           match acc with
           | Some (_, best) when best <= e.last_use -> acc
           | _ -> Some (key, e.last_use))
        c.tbl None
    in
    match victim with
    | None -> ()
    | Some (key, _) ->
      Hashtbl.remove c.tbl key;
      c.evictions <- c.evictions + 1

  let add c key artifact =
    if not (Hashtbl.mem c.tbl key) then begin
      if Hashtbl.length c.tbl >= c.capacity then evict_lru c;
      c.tick <- c.tick + 1;
      Hashtbl.replace c.tbl key { last_use = c.tick; artifact = Pass.copy_artifact artifact }
    end

  let absorb (c : t) (s : stats) =
    c.hits <- c.hits + s.hits;
    c.misses <- c.misses + s.misses;
    c.evictions <- c.evictions + s.evictions

  let pp fmt c =
    let s = stats c in
    Format.fprintf fmt "%d hits, %d misses, %d/%d entries, %d evictions" s.hits s.misses
      s.entries s.capacity s.evictions
end

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)

type exec = { pass : string; cache_hit : bool; elapsed_s : float }
type trace = exec list

let elapsed trace name =
  List.fold_left (fun acc e -> if e.pass = name then acc +. e.elapsed_s else acc) 0. trace

let hits trace = List.length (List.filter (fun e -> e.cache_hit) trace)
let misses trace = List.length (List.filter (fun e -> not e.cache_hit) trace)

let check_disabled t disabled =
  List.iter
    (fun name ->
       match find t name with
       | None -> invalid_arg ("Pipeline.run: unknown pass " ^ name)
       | Some p ->
         if not (Pass.can_skip p) then
           invalid_arg ("Pipeline.run: pass " ^ name ^ " is mandatory and cannot be disabled"))
    disabled

let run ?cache ?(disabled = []) t ctx =
  check_disabled t disabled;
  let trace = ref [] in
  List.iter
    (fun (p : Pass.t) ->
       if List.mem p.Pass.name disabled then
         (* A disabled pass contributes its neutral artifact outside
            the pass system: no span, no cache traffic, no trace row
            (the effective registry shrinks to match, see lint_trace). *)
         match p.Pass.skip with
         | Some skip -> Pass.store ctx (skip ctx)
         | None -> assert false
       else begin
         let t0 = Sys.time () in
         let cache_hit =
           Obs.Span.with_ p.Pass.span (fun () ->
               match cache with
               | None ->
                 Pass.store ctx (p.Pass.run ctx);
                 false
               | Some c ->
                 let key =
                   p.Pass.name ^ ":" ^ Pass.Fingerprint.to_hex (p.Pass.fingerprint ctx)
                 in
                 (match Cache.find c key with
                  | Some artifact ->
                    Pass.store ctx artifact;
                    true
                  | None ->
                    let artifact = p.Pass.run ctx in
                    Pass.store ctx artifact;
                    Cache.add c key artifact;
                    false))
         in
         trace :=
           { pass = p.Pass.name; cache_hit; elapsed_s = Sys.time () -. t0 } :: !trace
       end)
    t.passes;
  List.rev !trace

let lint_trace ?(disabled = []) t trace =
  let effective =
    List.filter (fun (p : Pass.t) -> not (List.mem p.Pass.name disabled)) t.passes
  in
  {
    Lint.registered =
      List.map (fun (p : Pass.t) -> (p.Pass.name, dep_names effective p)) effective;
    executed = List.map (fun e -> (e.pass, e.cache_hit)) trace;
  }
