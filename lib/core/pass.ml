module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Perm = Bose_linalg.Perm
module Lattice = Bose_hardware.Lattice
module Pattern = Bose_hardware.Pattern
module Embedding = Bose_hardware.Embedding
module Plan = Bose_decomp.Plan
module Eliminate = Bose_decomp.Eliminate
module Mapping = Bose_mapping.Mapping
module Dropout = Bose_dropout.Dropout
module Rng = Bose_util.Rng
module Obs = Bose_obs.Obs

type effort = Fast | Standard

let effort_name = function Fast -> "fast" | Standard -> "standard"

type pattern_source = Device | Explicit of Pattern.t

(* The shared compile context: immutable job inputs up front, one
   mutable cell per artifact kind. Passes read the artifacts of the
   passes before them and store exactly one artifact; the pipeline
   driver owns sequencing (and may fill a cell from the cache without
   running the pass at all). *)
type ctx = {
  unitary : Mat.t;
  config : Config.t;
  tau : float;
  effort : effort;
  device : Lattice.t;
  source : pattern_source;
  target : string option;
  rng : Rng.t;
  ws : Mat.workspace;
  (* Intra-compile parallelism for the fused elimination/replay engines.
     A scheduling-only knob: engine selection is by problem size, never
     by pool presence, so artifacts are bit-identical at every pool
     size — which is why the pool is NOT folded into fingerprints
     (cache keys, like artifacts, must not depend on the job count). *)
  pool : Bose_par.Pool.t option;
  mutable pattern : Pattern.t option;
  mutable mapping : Mapping.t option;
  mutable plan : Plan.t option;
  mutable policy : Dropout.policy option;
}

let context ?(effort = Standard) ?(tau = 0.999) ?target ?pool ~rng ~device ~config ~source
    ~ws u =
  {
    unitary = u;
    config;
    tau;
    effort;
    device;
    source;
    target;
    rng;
    ws;
    pool;
    pattern = None;
    mapping = None;
    plan = None;
    policy = None;
  }

type kind = Kpattern | Kmapping | Kplan | Kpolicy

type artifact =
  | Apattern of Pattern.t
  | Amapping of Mapping.t
  | Aplan of Plan.t
  | Apolicy of Dropout.policy option

let store ctx = function
  | Apattern p -> ctx.pattern <- Some p
  | Amapping m -> ctx.mapping <- Some m
  | Aplan p -> ctx.plan <- Some p
  | Apolicy p -> ctx.policy <- p

let missing name = invalid_arg ("Pass: " ^ name ^ " artifact not produced yet")
let pattern_exn ctx = match ctx.pattern with Some p -> p | None -> missing "pattern"
let mapping_exn ctx = match ctx.mapping with Some m -> m | None -> missing "mapping"
let plan_exn ctx = match ctx.plan with Some p -> p | None -> missing "plan"

(* Deep copies sever every mutable cell (matrices, element/weight
   arrays) shared between a cached artifact and the one handed to the
   caller, so neither side can poison the other. Patterns and
   permutations are immutable behind their interfaces and are shared. *)
let copy_mapping (m : Mapping.t) = { m with Mapping.permuted = Mat.copy m.Mapping.permuted }

let copy_plan (t : Plan.t) =
  { t with Plan.elements = Array.copy t.Plan.elements; lambda = Array.copy t.Plan.lambda }

let copy_policy (p : Dropout.policy) =
  { p with Dropout.weights = Array.copy p.Dropout.weights }

let copy_artifact = function
  | Apattern p -> Apattern p
  | Amapping m -> Amapping (copy_mapping m)
  | Aplan p -> Aplan (copy_plan p)
  | Apolicy p -> Apolicy (Option.map copy_policy p)

(* ------------------------------------------------------------------ *)
(* Content fingerprints: FNV-1a over the bytes of a pass's inputs.
   Artifacts produced by upstream passes are folded in by content, so a
   pass's key transitively covers everything that can change its
   output — except the RNG stream, which is deliberately excluded: the
   cache canonicalizes a fingerprint to the first artifact computed for
   it (see Pipeline).                                                  *)

module Fingerprint = struct
  type t = int64

  let seed = 0xcbf29ce484222325L
  let fnv_prime = 0x100000001b3L
  let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

  let int64 h v =
    let h = ref h in
    for i = 0 to 7 do
      h := byte !h (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done;
    !h

  let int h v = int64 h (Int64.of_int v)
  let float h f = int64 h (Int64.bits_of_float f)
  let bool h b = byte h (if b then 1 else 0)
  let string h s = String.fold_left (fun h c -> byte h (Char.code c)) h s

  let mat h (u : Mat.t) =
    let h = ref (int (int h (Mat.rows u)) (Mat.cols u)) in
    for i = 0 to Mat.rows u - 1 do
      for j = 0 to Mat.cols u - 1 do
        let (v : Cx.t) = Mat.get u i j in
        h := float (float !h v.re) v.im
      done
    done;
    !h

  let pattern h p =
    let n = Pattern.size p in
    let h = ref (int h n) in
    for m = 0 to n - 1 do
      List.iter (fun nb -> h := int !h nb) (Pattern.neighbors p m);
      h := int !h (match Pattern.site p m with None -> -1 | Some s -> s);
      h := bool !h (Pattern.on_main_path p m)
    done;
    !h

  let perm h p = Array.fold_left int h (Perm.to_array p)
  let to_hex = Printf.sprintf "%016Lx"
end

(* Shared job prefix: config + tau + effort (+ the target name when
   compiling for one). The per-pass functions extend it with the
   slices (unitary bytes, upstream artifacts) that pass actually
   reads. Folding the target identity here is what keeps cache keys
   from colliding across targets whose derived patterns happen to
   coincide; target-less compiles keep their historical fingerprints
   bit-for-bit (disk caches stay warm across the upgrade). *)
let base_fp ctx =
  let open Fingerprint in
  let h = string seed (Config.name ctx.config) in
  let h = float h ctx.tau in
  let h = string h (effort_name ctx.effort) in
  match ctx.target with None -> h | Some name -> string (string h "target") name

let embed_fp ctx =
  let open Fingerprint in
  let h = int (base_fp ctx) (Mat.rows ctx.unitary) in
  match ctx.source with
  | Device -> int (int (string h "device") (Lattice.rows ctx.device)) (Lattice.cols ctx.device)
  | Explicit p -> pattern (string h "explicit") p

let map_fp ctx = Fingerprint.(pattern (mat (base_fp ctx) ctx.unitary) (pattern_exn ctx))

let mapping_content h (m : Mapping.t) =
  let open Fingerprint in
  perm (perm (mat h m.Mapping.permuted) m.Mapping.row_perm) m.Mapping.col_perm

let decompose_fp ctx =
  mapping_content (Fingerprint.pattern (base_fp ctx) (pattern_exn ctx)) (mapping_exn ctx)

let dropout_fp ctx =
  (* Plan.to_string is the bit-exact hex-float serialization, so the
     plan folds in by content without a bespoke walker. *)
  let h = Fingerprint.string (base_fp ctx) (Plan.to_string (plan_exn ctx)) in
  Fingerprint.mat h (mapping_exn ctx).Mapping.permuted

(* ------------------------------------------------------------------ *)
(* The pass registry entries. [run] bodies are verbatim the stages the
   monolithic Compiler.compile used to hardcode — bit-exact outputs and
   identical RNG draw order are load-bearing (pinned by
   test/test_pipeline.ml).                                             *)

type t = {
  name : string;
  span : string;
  doc : string;
  produces : kind;
  depends : kind list;
  fingerprint : ctx -> Fingerprint.t;
  run : ctx -> artifact;
  skip : (ctx -> artifact) option;
}

let can_skip p = Option.is_some p.skip

let mapping_candidates effort n =
  match effort with
  | Standard -> None (* Mapping.optimize defaults *)
  | Fast -> Some [ max 1 (n / 3); max 1 (n / 2) ]

let dropout_knobs effort n =
  match effort with
  | Standard -> ([ 1; 2; 5; 10; 20; 50; 100 ], 40)
  | Fast -> ([ 1; 20; 100 ], max 4 (min 10 (4000 / (n + 1))))

(* The polish hill-climb pays one O(N³) decomposition per trial: scale
   the trial count so the pass stays a modest fraction of compile time. *)
let polish_trials effort n =
  let base = match effort with Standard -> 500 | Fast -> 150 in
  min base (max 0 (600_000_000 / (n * n * n)))

let embed =
  {
    name = "embed";
    span = "compile.embed";
    doc = "device + config -> elimination pattern (tree template or chain), paper §IV";
    produces = Kpattern;
    depends = [];
    fingerprint = embed_fp;
    run =
      (fun ctx ->
        let n = Mat.rows ctx.unitary in
        Apattern
          (match ctx.source with
           | Device ->
             if Config.uses_tree_pattern ctx.config then Embedding.for_program ctx.device n
             else Embedding.baseline ctx.device n
           | Explicit p -> if Config.uses_tree_pattern ctx.config then p else Pattern.chain n));
    skip = Some (fun ctx -> Apattern (Pattern.chain (Mat.rows ctx.unitary)));
  }

let map =
  {
    name = "map";
    span = "compile.map";
    doc = "unitary + pattern -> row/col relabeling permutations, paper §V";
    produces = Kmapping;
    depends = [ Kpattern ];
    fingerprint = map_fp;
    run =
      (fun ctx ->
        let n = Mat.rows ctx.unitary in
        let pattern = pattern_exn ctx in
        Amapping
          (if Config.uses_mapping ctx.config then begin
             let first =
               Mapping.optimize ~ws:ctx.ws
                 ?candidate_ks:(mapping_candidates ctx.effort n)
                 pattern ctx.unitary
             in
             let trials = polish_trials ctx.effort n in
             if trials > 0 then
               Obs.Span.with_ "compile.map.polish" (fun () ->
                   Mapping.polish ~ws:ctx.ws ~trials ~tau:ctx.tau ~rng:ctx.rng pattern first)
             else first
           end
           else Mapping.trivial ctx.unitary));
    skip = Some (fun ctx -> Amapping (Mapping.trivial ctx.unitary));
  }

let decompose =
  {
    name = "decompose";
    span = "compile.decompose";
    doc = "permuted unitary -> Givens-rotation plan along the pattern, paper §IV-A";
    produces = Kplan;
    depends = [ Kpattern; Kmapping ];
    fingerprint = decompose_fp;
    run =
      (fun ctx ->
        Aplan
          (Eliminate.decompose ~ws:ctx.ws ?pool:ctx.pool (pattern_exn ctx)
             (mapping_exn ctx).Mapping.permuted));
    skip = None;
  }

let dropout =
  {
    name = "dropout";
    span = "compile.dropout";
    doc = "plan + tau -> probabilistic gate-dropout policy, paper §VI";
    produces = Kpolicy;
    depends = [ Kplan; Kmapping ];
    fingerprint = dropout_fp;
    run =
      (fun ctx ->
        Apolicy
          (if Config.uses_dropout ctx.config then begin
             let n = Mat.rows ctx.unitary in
             let powers, iterations = dropout_knobs ctx.effort n in
             Some
               (Dropout.make_policy ~ws:ctx.ws ~powers ~iterations ctx.rng (plan_exn ctx)
                  (mapping_exn ctx).Mapping.permuted ~tau:ctx.tau)
           end
           else None));
    skip = Some (fun _ -> Apolicy None);
  }
