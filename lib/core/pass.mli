(** Typed compiler passes — the unit of the pass-manager pipeline.

    A pass is a named, registered stage of the Bosehedral compile
    (embed → map → decompose → dropout, paper §IV–§VI): it declares the
    artifact kind it {!type:t.produces}, the kinds it reads
    ({!type:t.depends}), the telemetry span that times it, a content
    {!Fingerprint} over its inputs, and an executable body over the
    shared compile {!ctx}. [Pipeline] owns sequencing, caching and
    trace recording; [Compiler.compile] is a thin driver over the
    default registry.

    The pass bodies are verbatim the stages the monolithic
    [Compiler.compile] used to hardcode: outputs are bit-exact with the
    pre-pipeline compiler, including RNG draw order (pinned by
    [test/test_pipeline.ml]). *)

type effort = Fast | Standard
(** Search-effort knob, re-exported as [Compiler.effort]. [Fast] trims
    the mapping-K candidates and dropout search for large problems. *)

val effort_name : effort -> string

type pattern_source =
  | Device  (** Embed into the compile device's lattice ([compile]). *)
  | Explicit of Bose_hardware.Pattern.t
      (** Caller-supplied pattern ([compile_with_pattern]); replaced by
          a chain when the config does not use the tree pattern. *)

type ctx = {
  unitary : Bose_linalg.Mat.t;
  config : Config.t;
  tau : float;
  effort : effort;
  device : Bose_hardware.Lattice.t;
  source : pattern_source;
  target : string option;
      (** Hardware-target identity ([Compiler.compile_for_target]),
          folded into every pass fingerprint so cache keys discriminate
          across targets; [None] (the legacy paths) leaves fingerprints
          bit-for-bit unchanged. *)
  rng : Bose_util.Rng.t;
  ws : Bose_linalg.Mat.workspace;
  pool : Bose_par.Pool.t option;
      (** Intra-compile parallelism for the fused elimination/replay
          engines ([Compiler.compile ?pool], [bosec compile --jobs]).
          Scheduling-only: artifacts are bit-identical at every pool
          size, so the pool is never folded into fingerprints. *)
  mutable pattern : Bose_hardware.Pattern.t option;
  mutable mapping : Bose_mapping.Mapping.t option;
  mutable plan : Bose_decomp.Plan.t option;
  mutable policy : Bose_dropout.Dropout.policy option;
}
(** The shared compile context: immutable job inputs, then one mutable
    cell per artifact kind, filled in registry order. [policy = None]
    is a legitimate dropout result (configs without dropout), not an
    absent artifact. *)

val context :
  ?effort:effort ->
  ?tau:float ->
  ?target:string ->
  ?pool:Bose_par.Pool.t ->
  rng:Bose_util.Rng.t ->
  device:Bose_hardware.Lattice.t ->
  config:Config.t ->
  source:pattern_source ->
  ws:Bose_linalg.Mat.workspace ->
  Bose_linalg.Mat.t ->
  ctx
(** Fresh context with every artifact cell empty. [tau] defaults to
    0.999, [effort] to [Standard] — the [Compiler.compile] defaults. *)

type kind = Kpattern | Kmapping | Kplan | Kpolicy
(** Artifact kinds, for dependency declaration. *)

type artifact =
  | Apattern of Bose_hardware.Pattern.t
  | Amapping of Bose_mapping.Mapping.t
  | Aplan of Bose_decomp.Plan.t
  | Apolicy of Bose_dropout.Dropout.policy option

val store : ctx -> artifact -> unit
(** Slot an artifact into its context cell. *)

val copy_artifact : artifact -> artifact
(** Deep copy severing every mutable cell (matrices, element and weight
    arrays); patterns and permutations are immutable behind their
    interfaces and are shared. The cache copies on both insert and hit
    so cached artifacts and caller-visible ones can never alias. *)

val pattern_exn : ctx -> Bose_hardware.Pattern.t
val mapping_exn : ctx -> Bose_mapping.Mapping.t
val plan_exn : ctx -> Bose_decomp.Plan.t
(** Artifact accessors.
    @raise Invalid_argument when the producing pass has not run. *)

(** Content fingerprints: 64-bit FNV-1a folds over the bytes of a
    pass's inputs — unitary entry bits, config name, tau bits, effort,
    pattern structure, upstream artifact content. The RNG stream is
    deliberately excluded: the artifact cache canonicalizes a
    fingerprint to the first artifact computed for it. *)
module Fingerprint : sig
  type t = int64

  val seed : t
  val int : t -> int -> t
  val float : t -> float -> t
  val bool : t -> bool -> t
  val string : t -> string -> t
  val mat : t -> Bose_linalg.Mat.t -> t
  val pattern : t -> Bose_hardware.Pattern.t -> t
  val perm : t -> Bose_linalg.Perm.t -> t
  val to_hex : t -> string
end

type t = {
  name : string;  (** Registry key, e.g. ["map"]. *)
  span : string;  (** Telemetry span, e.g. ["compile.map"] (METRICS.md). *)
  doc : string;  (** One line, shown by [bosec compile --list-passes]. *)
  produces : kind;
  depends : kind list;  (** Artifact kinds this pass reads. *)
  fingerprint : ctx -> Fingerprint.t;
      (** Content fingerprint over the pass's inputs; the cache key. *)
  run : ctx -> artifact;
  skip : (ctx -> artifact) option;
      (** Neutral artifact when the pass is disabled
          ([--disable-pass]); [None] means the pass is mandatory. *)
}

val can_skip : t -> bool

val embed : t
val map : t
val decompose : t
val dropout : t
(** The four paper passes, in registry order. *)

val mapping_candidates : effort -> int -> int list option
val dropout_knobs : effort -> int -> int list * int
val polish_trials : effort -> int -> int
(** Effort-scaled search knobs, exposed for tests pinning bit-exactness
    against a hand-rolled pipeline. *)
