(** End-to-end execution of a compiled GBS program on the noisy
    simulator: per-shot circuit generation, physical↔logical relabeling
    from the mapping permutations, dropout-ensemble averaging, and the
    JSD-vs-ideal metric of the paper's Fig. 10.

    {2 Pass contract}

    Execution is instrumented with three telemetry spans
    (docs/METRICS.md):

    - ["run.ideal_distribution"]: program → exact noise-free output
      distribution, computed directly from the high-level unitary.
      Never touches the compiled artifacts.
    - ["run.noisy_distribution"]: compiled program → lossy ensemble
      estimate. Contains one ["run.shot"] per circuit realization.
    - ["run.shot"]: one sampled shot circuit simulated gate-by-gate
      with per-gate loss, outcomes relabeled physical → logical through
      the mapping permutations before aggregation.

    Invariants: both distributions are over {e logical} photon
    patterns, normalized over the same truncated outcome set, so they
    are directly comparable; realizations draw from [rng] in a fixed
    order, so results are deterministic given the seed — telemetry on
    or off. *)

type program = {
  squeezing : Bose_linalg.Cx.t array;
  (** Per logical qumode: α of the preparation squeezer (0 = none). *)
  unitary : Bose_linalg.Mat.t;  (** The linear interferometer. *)
  displacements : Bose_linalg.Cx.t array;
  (** Per logical qumode: displacement before measurement (0 = none). *)
  thermal : float array;
  (** Per logical qumode: mean thermal occupation of the input state
      (all zeros = vacuum input). Used by finite-temperature vibronic
      instances. *)
}

val pure_program :
  squeezing:Bose_linalg.Cx.t array ->
  unitary:Bose_linalg.Mat.t ->
  ?displacements:Bose_linalg.Cx.t array ->
  unit ->
  program
(** Vacuum-input program (the common case); [displacements] default to
    zero. *)

val program_modes : program -> int

val validate_program : program -> unit
(** @raise Invalid_argument on inconsistent array lengths or a
    non-square unitary. *)

val gate_counts : program -> device:Bose_hardware.Lattice.t -> Bose_circuit.Circuit.counts
(** Gate totals of the fully decomposed (un-dropped) program — the
    paper's Table I columns. *)

val ideal_distribution :
  max_photons:int -> program -> int list Bose_util.Dist.t
(** Noise-free exact output distribution (the paper's "standard
    distribution") — simulated directly from the high-level unitary. *)

val noisy_distribution :
  ?realizations:int ->
  rng:Bose_util.Rng.t ->
  noise:Bose_circuit.Noise.t ->
  max_photons:int ->
  Compiler.t ->
  program ->
  int list Bose_util.Dist.t
(** Output distribution (over {e logical} patterns) of the compiled
    program executed gate-by-gate with per-gate photon loss. For
    configurations with probabilistic dropout the result averages
    [realizations] independently sampled shot circuits (default 16) —
    one exact lossy simulation each. *)

val jsd_vs_ideal :
  ?realizations:int ->
  rng:Bose_util.Rng.t ->
  noise:Bose_circuit.Noise.t ->
  max_photons:int ->
  Compiler.t ->
  program ->
  float
(** Jensen-Shannon divergence between {!noisy_distribution} and
    {!ideal_distribution} — the paper's Fig. 10 Y-axis. *)
