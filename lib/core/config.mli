(** The four experiment configurations of the paper's evaluation
    (§VII-A): which Bosehedral passes are enabled. *)

type t =
  | Baseline  (** Vanilla chain decomposition, no approximation. *)
  | Rot_cut  (** Chain decomposition + gate dropout only. *)
  | Decomp_opt  (** Optimized elimination pattern + dropout, trivial mapping. *)
  | Full_opt  (** Pattern + qumode mapping + dropout: all of Bosehedral. *)

val all : t list
(** In the paper's order. *)

val name : t -> string
val of_string : string -> t option
val uses_dropout : t -> bool
val uses_tree_pattern : t -> bool
val uses_mapping : t -> bool
val pp : Format.formatter -> t -> unit
