type t = Baseline | Rot_cut | Decomp_opt | Full_opt

let all = [ Baseline; Rot_cut; Decomp_opt; Full_opt ]

let name = function
  | Baseline -> "Baseline"
  | Rot_cut -> "Rot-Cut"
  | Decomp_opt -> "Decomp-Opt"
  | Full_opt -> "Full-Opt"

let of_string s =
  match String.lowercase_ascii s with
  | "baseline" -> Some Baseline
  | "rot-cut" | "rotcut" | "rot_cut" -> Some Rot_cut
  | "decomp-opt" | "decompopt" | "decomp_opt" -> Some Decomp_opt
  | "full-opt" | "fullopt" | "full_opt" -> Some Full_opt
  | _ -> None

let uses_dropout = function
  | Baseline -> false
  | Rot_cut | Decomp_opt | Full_opt -> true

let uses_tree_pattern = function
  | Baseline | Rot_cut -> false
  | Decomp_opt | Full_opt -> true

let uses_mapping = function
  | Baseline | Rot_cut | Decomp_opt -> false
  | Full_opt -> true

let pp fmt t = Format.pp_print_string fmt (name t)
