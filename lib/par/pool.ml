module Obs = Bose_obs.Obs

let g_domains = Obs.Gauge.make "par.domains"
let g_tasks = Obs.Gauge.make "par.tasks"
let g_idle = Obs.Gauge.make "par.steal_idle_ns"

(* Set in every worker domain: lets [run] reject nested parallelism
   (a worker blocking on a batch it must itself help drain). *)
let worker_flag : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type t = {
  mu : Mutex.t;
  work : Condition.t;  (* a new batch is available, or stop *)
  done_c : Condition.t;  (* the current batch completed *)
  size : int;  (* total parallelism, owner included *)
  mutable batch : (int -> unit) option;
  mutable tasks : int;
  mutable next : int;  (* shared claim cursor *)
  mutable unfinished : int;
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
  mutable stop : bool;
  mutable closed : bool;
  mutable running : bool;  (* a batch is in flight (owner re-entrancy guard) *)
  busy : float array;  (* per-slot task seconds this batch; slot 0 = owner *)
  sinks : Obs.Local.sink array;  (* one per worker domain *)
  mutable workers : unit Domain.t array;
}

(* Claim-and-run loop shared by owner (slot 0) and workers. Called with
   the mutex held; returns with it held. Task exceptions are recorded
   (lowest task index wins) and never escape a worker. *)
let drain t slot =
  while t.next < t.tasks do
    let i = t.next in
    t.next <- i + 1;
    let f = match t.batch with Some f -> f | None -> assert false in
    Mutex.unlock t.mu;
    let t0 = Obs.now () in
    (try f i
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock t.mu;
       (match t.failure with
        | Some (j, _, _) when j <= i -> ()
        | Some _ | None -> t.failure <- Some (i, e, bt));
       Mutex.unlock t.mu);
    let dt = Obs.now () -. t0 in
    Mutex.lock t.mu;
    t.busy.(slot) <- t.busy.(slot) +. dt;
    t.unfinished <- t.unfinished - 1;
    if t.unfinished = 0 then Condition.broadcast t.done_c
  done

let worker t slot sink () =
  Domain.DLS.set worker_flag true;
  Obs.Local.install sink;
  Mutex.lock t.mu;
  while not t.stop do
    if t.next < t.tasks then drain t slot else Condition.wait t.work t.mu
  done;
  Mutex.unlock t.mu

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      mu = Mutex.create ();
      work = Condition.create ();
      done_c = Condition.create ();
      size = domains;
      batch = None;
      tasks = 0;
      next = 0;
      unfinished = 0;
      failure = None;
      stop = false;
      closed = false;
      running = false;
      busy = Array.make domains 0.;
      sinks = Array.init (domains - 1) (fun _ -> Obs.Local.create ());
      workers = [||];
    }
  in
  t.workers <-
    Array.init (domains - 1) (fun i -> Domain.spawn (worker t (i + 1) t.sinks.(i)));
  t

let domains t = t.size

let finish_telemetry t ~tasks ~wall =
  (* Merge order is worker order, so merged telemetry is deterministic
     for a deterministic task set. *)
  Array.iter Obs.Local.merge t.sinks;
  let idle = ref 0. in
  Array.iter (fun b -> idle := !idle +. Float.max 0. (wall -. b)) t.busy;
  Obs.Gauge.set g_domains (float_of_int t.size);
  Obs.Gauge.set g_tasks (float_of_int tasks);
  Obs.Gauge.set g_idle (!idle *. 1e9)

let run t ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: negative task count";
  if Domain.DLS.get worker_flag then
    invalid_arg "Pool.run: nested parallelism (called from a pool worker)";
  if t.closed then invalid_arg "Pool.run: pool is shut down";
  if tasks = 0 then ()
  else if t.size = 1 then begin
    if t.running then
      invalid_arg "Pool.run: nested parallelism (pool already running a batch)";
    t.running <- true;
    Fun.protect
      ~finally:(fun () -> t.running <- false)
      (fun () ->
         for i = 0 to tasks - 1 do
           f i
         done);
    Obs.Gauge.set g_domains 1.;
    Obs.Gauge.set g_tasks (float_of_int tasks);
    Obs.Gauge.set g_idle 0.
  end
  else begin
    let t_start = Obs.now () in
    Mutex.lock t.mu;
    if t.running then begin
      Mutex.unlock t.mu;
      invalid_arg "Pool.run: nested parallelism (pool already running a batch)"
    end;
    t.running <- true;
    t.batch <- Some f;
    t.tasks <- tasks;
    t.next <- 0;
    t.unfinished <- tasks;
    t.failure <- None;
    Array.fill t.busy 0 t.size 0.;
    Condition.broadcast t.work;
    drain t 0;
    while t.unfinished > 0 do
      Condition.wait t.done_c t.mu
    done;
    t.batch <- None;
    t.tasks <- 0;
    t.next <- 0;
    let failure = t.failure in
    t.failure <- None;
    t.running <- false;
    Mutex.unlock t.mu;
    finish_telemetry t ~tasks ~wall:(Obs.now () -. t_start);
    match failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run t ~tasks:n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let chunked_iter t ~chunks ~n f =
  if chunks < 1 then invalid_arg "Pool.chunked_iter: chunks must be >= 1";
  if n < 0 then invalid_arg "Pool.chunked_iter: negative n";
  if n > 0 then begin
    let chunks = min chunks n in
    let base = n / chunks and extra = n mod chunks in
    let lo c = (c * base) + min c extra in
    run t ~tasks:chunks (fun c -> f ~chunk:c ~lo:(lo c) ~hi:(lo (c + 1)))
  end

(* The fused elimination/replay engines all share the same dispatch:
   split [0, n) across the pool when one is present and worth waking,
   otherwise run the whole range inline. Slice boundaries come from
   [chunked_iter], so they depend only on (domains, n) — callers whose
   per-index work is order-independent within a slice stay bit-identical
   at every pool size. *)
let bulk_iter pool ~n f =
  match pool with
  | Some t when t.size > 1 && n > 1 ->
    chunked_iter t ~chunks:t.size ~n (fun ~chunk:_ ~lo ~hi -> f ~lo ~hi)
  | _ -> if n > 0 then f ~lo:0 ~hi:n

let shutdown t =
  Mutex.lock t.mu;
  if t.closed then Mutex.unlock t.mu
  else begin
    t.closed <- true;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    Array.iter Domain.join t.workers
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
