(** A reusable fixed-size domain pool, stdlib-only
    ([Domain]/[Mutex]/[Condition]).

    The pool owns [domains - 1] long-lived worker domains; the owner
    domain participates in every batch, so [create ~domains:n] applies
    [n]-way parallelism with [n - 1] spawns. Tasks of a batch are
    claimed from a shared cursor under the pool mutex — coarse-grained
    on purpose: every intended workload (a compile job, a chain of
    sampler shots, a chunk of Monte-Carlo trials) runs orders of
    magnitude longer than a mutex round-trip.

    {b Telemetry.} Each worker domain carries its own
    {!Bose_obs.Obs.Local} sink, so pool tasks may record counters,
    gauges, histograms and spans freely without racing the global
    registry; the owner merges all sinks at the join barrier and then
    records the [par.domains], [par.tasks] and [par.steal_idle_ns]
    gauges (docs/METRICS.md).

    {b Determinism.} The pool schedules; it never draws randomness.
    Callers that need parallel output bit-identical to sequential must
    pre-split their RNG into one stream per {e task} (not per domain) —
    see {!Bose_util.Rng.split} — so results depend only on the task
    index, never on which domain ran it.

    {b Exceptions.} A task that raises does not poison the batch: the
    remaining tasks still run, and after the barrier the exception of
    the lowest-indexed failed task is re-raised (with its backtrace) on
    the owner. The pool remains usable afterwards. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains. [domains]
    is the total parallelism including the owner; [~domains:1] spawns
    nothing and degrades every entry point to an inline sequential
    loop.
    @raise Invalid_argument when [domains < 1]. *)

val domains : t -> int
(** The configured total parallelism (owner included). *)

val run : t -> tasks:int -> (int -> unit) -> unit
(** [run t ~tasks f] executes [f 0 .. f (tasks - 1)], each exactly
    once, across the pool, and returns after all complete. Any number
    of tasks is fine — zero returns immediately, more tasks than
    domains queue on the shared cursor.
    @raise Invalid_argument on negative [tasks], on nested parallelism
    (calling [run] from inside a pool task, whichever domain it landed
    on — it would deadlock or corrupt the shared cursor), or on a pool
    that was {!shutdown}. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] is [Array.map f xs] with each element a pool task;
    results are in input order. *)

val chunked_iter : t -> chunks:int -> n:int -> (chunk:int -> lo:int -> hi:int -> unit) -> unit
(** [chunked_iter t ~chunks ~n f] partitions [0 .. n - 1] into at most
    [chunks] contiguous slices of near-equal size and runs
    [f ~chunk ~lo ~hi] (half-open [\[lo, hi)]) as one task per slice.
    The slice boundaries depend only on [chunks] and [n] — callers key
    per-chunk state (caches, workspaces, RNG streams) off [chunk] and
    get scheduling-independent results. *)

val bulk_iter : t option -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** [bulk_iter pool ~n f] covers [0 .. n - 1] with [f ~lo ~hi] slices:
    one slice per domain through {!chunked_iter} when [pool] is
    [Some p] with [domains p > 1] (and [n > 1]), a single inline
    [f ~lo:0 ~hi:n] call otherwise. The shared dispatch of the fused
    elimination and replay engines: slice boundaries depend only on
    the domain count and [n], so per-index-independent work is
    bit-identical at every pool size. *)

val shutdown : t -> unit
(** Stop and join every worker. Idempotent; the pool rejects further
    {!run}/{!map}/{!chunked_iter} calls afterwards. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] creates a pool, applies [f], and always
    {!shutdown}s it, even when [f] raises. *)
