(** The [bosec serve] compile/sample service: a long-running process
    answering line-delimited JSON requests (one request per line, one
    reply per line — full schemas in docs/SERVING.md) over
    stdin/stdout or a Unix-domain socket.

    Request ops: [ping], [compile], [analyze], [sample], [stats],
    [shutdown]. [analyze] runs the {!Bose_flow.Flow} static analysis
    (plus the lint passes) over an inline plan or a cached compile
    artifact and replies with the report and diagnostics.
    Every reply carries the request's [id] back and is either
    [{"id":..,"ok":true,"result":{..}}] or
    [{"id":..,"ok":false,"error":{"code":..,"message":..}}] with code
    [parse], [bad-request] or [internal]. A malformed line never kills
    the server.

    Compile results are cached at two levels: the in-process
    {!Bosehedral.Pipeline.Cache} (pass-level artifacts) and a
    {!Bose_store.Diskcache} keyed by a {!Bosehedral.Pass.Fingerprint}
    over the request's full content (config, tau, effort, device,
    unitary entries — the seed is deliberately excluded: same content,
    same artifact). A disk hit returns the stored bytes verbatim, so
    artifacts are bit-identical across server restarts.

    Batches of compile misses arriving together are fanned out over a
    {!Bose_par.Pool}; sampling requests hand the pool to the sampler's
    chain fan-out. All cache state is owner-domain-only — pool tasks
    compile cold and never touch either cache.

    Telemetry ([serve.*] counters/gauges, docs/METRICS.md) records
    request counts, per-level cache hits, latency and disk-store
    health; like all [Bose_obs] instrumentation it is off unless the
    caller enables it. *)

type t

val create :
  ?jobs:int -> ?cache_dir:string -> ?max_cache_mb:int -> unit -> t
(** [jobs] (default 1) is total domain parallelism — [jobs - 1] worker
    domains are spawned. [cache_dir] enables the disk store, sized by
    [max_cache_mb] (default 64).
    @raise Invalid_argument when [jobs < 1] or [max_cache_mb < 1]. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the serve loops call it on
    exit. *)

val stopping : t -> bool
(** True once a [shutdown] request was handled; the serve loops exit
    at the next iteration. *)

val handle_line : t -> string -> string
(** One request line in, one reply line out (no trailing newline).
    Exposed for tests and for embedding; never raises on bad input. *)

val handle_many : t -> string list -> string list
(** A batch of request lines, replies in order. Compile misses in the
    batch are compiled in parallel on the pool (when [jobs > 1]); the
    replies are identical to [List.map (handle_line t)]. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Read request lines until EOF or a [shutdown] request, writing one
    flushed reply line each. Calls {!shutdown} before returning. *)

val serve_socket : t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (replacing a stale socket
    file), accept any number of concurrent clients, and serve until a
    [shutdown] request. Lines arriving together across clients are
    handled as one {!handle_many} batch. The socket file is removed on
    exit. *)
