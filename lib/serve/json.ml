type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- *)
(* Printer.                                                          *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\b' -> Buffer.add_string buf "\\b"
       | '\012' -> Buffer.add_string buf "\\f"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_integer x && Float.abs x < 9.007199254740992e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else begin
    let s15 = Printf.sprintf "%.15g" x in
    Buffer.add_string buf
      (if float_of_string s15 = x then s15 else Printf.sprintf "%.17g" x)
  end

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x ->
      if Float.is_finite x then add_num buf x else Buffer.add_string buf "null"
    | Str s -> add_escaped buf s
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
           if i > 0 then Buffer.add_char buf ',';
           go x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
           if i > 0 then Buffer.add_char buf ',';
           add_escaped buf k;
           Buffer.add_char buf ':';
           go x)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ---------------------------------------------------------------- *)
(* Parser: recursive descent, one value per input.                   *)

exception Fail of string * int

let parse s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
         | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
         | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
         | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
         | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
         | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
         | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
         | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
         | Some 'u' ->
           advance ();
           let c =
             match (try Some (hex4 ()) with Failure _ -> None) with
             | Some c -> c
             | None -> fail "bad \\u escape"
           in
           (* UTF-8 encode the BMP code point (surrogates pass through
              as-is — the protocol never emits them). *)
           if c < 0x80 then Buffer.add_char buf (Char.chr c)
           else if c < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
           end;
           go ()
         | _ -> fail "bad escape")
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let pair () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let items = ref [ pair () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := pair () :: !items;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !items)
      end
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage after value";
    Ok v
  with Fail (msg, at) -> Error (Printf.sprintf "%s (at byte %d)" msg at)

(* ---------------------------------------------------------------- *)

let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num x -> Some x | _ -> None

let int = function
  | Num x when Float.is_integer x && Float.abs x <= 1e9 -> Some (int_of_float x)
  | _ -> None

let bool_ = function Bool b -> Some b | _ -> None
