(** Minimal JSON for the [bosec serve] wire protocol
    (docs/SERVING.md): line-delimited request/response values, stdlib
    only. Numbers are [float] (ints round-trip exactly up to 2^53);
    strings are validated UTF-8-agnostic byte sequences with the
    standard escapes. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON value (surrounding whitespace allowed;
    trailing garbage is an error). [Error] carries a message with a
    0-based byte offset. *)

val to_string : t -> string
(** One line, no trailing newline. Integral numbers print without a
    decimal point; other floats as shortest decimal that reparses
    exactly. *)

val mem : string -> t -> t option
(** [mem k (Obj ...)] is the first binding of [k]; [None] on any other
    constructor. *)

val str : t -> string option
val num : t -> float option
val int : t -> int option
(** [int] accepts only integral [Num]s. *)

val bool_ : t -> bool option
