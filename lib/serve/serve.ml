module Rng = Bose_util.Rng
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary
module Plan = Bose_decomp.Plan
module Lattice = Bose_hardware.Lattice
module Target = Bose_hardware.Target
module Mapping = Bose_mapping.Mapping
module Pool = Bose_par.Pool
module Gaussian = Bose_gbs.Gaussian
module Sampler = Bose_gbs.Sampler
module Fock = Bose_gbs.Fock
module Obs = Bose_obs.Obs
module Diskcache = Bose_store.Diskcache
module Noise = Bose_circuit.Noise
module Dropout = Bose_dropout.Dropout
module Flow = Bose_flow.Flow
module Lint = Bose_lint.Lint
module Diag = Bose_lint.Diag
open Bosehedral

(* serve.* telemetry (docs/METRICS.md). Counters are also mirrored in
   plain fields of [t] so `stats` replies work with telemetry off. *)
let c_requests = Obs.Counter.make "serve.requests"
let c_errors = Obs.Counter.make "serve.errors"
let c_disk_hits = Obs.Counter.make "serve.compile.disk_hits"
let c_mem_hits = Obs.Counter.make "serve.compile.mem_hits"
let c_misses = Obs.Counter.make "serve.compile.misses"
let g_hit_rate = Obs.Gauge.make "serve.hit_rate"
let g_bytes = Obs.Gauge.make "serve.cache.bytes"
let g_entries = Obs.Gauge.make "serve.cache.entries"
let g_evictions = Obs.Gauge.make "serve.cache.evictions"
let g_quarantined = Obs.Gauge.make "serve.cache.quarantined"
let g_mmap_hits = Obs.Gauge.make "store.mmap_hits"

let h_batch_s =
  Obs.Histo.make "serve.batch_s" ~bounds:[| 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. |]

type t = {
  pool : Pool.t option;
  mem : Pipeline.Cache.t;
  disk : Diskcache.t option;
  mutable stop : bool;
  mutable requests : int;
  mutable errors : int;
  mutable disk_hits : int;
  mutable mem_hits : int;
  mutable misses : int;
}

let create ?(jobs = 1) ?cache_dir ?(max_cache_mb = 64) () =
  if jobs < 1 then invalid_arg "Serve.create: jobs must be >= 1";
  if max_cache_mb < 1 then invalid_arg "Serve.create: max_cache_mb must be >= 1";
  {
    pool = (if jobs > 1 then Some (Pool.create ~domains:jobs) else None);
    mem = Pipeline.Cache.create ();
    disk =
      Option.map
        (fun dir -> Diskcache.open_ ~dir ~max_bytes:(max_cache_mb * 1024 * 1024))
        cache_dir;
    stop = false;
    requests = 0;
    errors = 0;
    disk_hits = 0;
    mem_hits = 0;
    misses = 0;
  }

let shutdown t = Option.iter Pool.shutdown t.pool
let stopping t = t.stop

(* ---------------------------------------------------------------- *)
(* Requests.                                                         *)

type compile_req = {
  u : Mat.t;
  config : Config.t;
  tau : float;
  effort : Compiler.effort;
  rows : int;
  cols : int;
  target : Target.t option;
  seed : int;
  key : string;
}

type sample_req = {
  s_modes : int;
  s_seed : int;
  shots : int;
  chains : int;
  squeezing : float;
  max_photons : int;
}

type analyze_req = {
  a_plan : Plan.t option;  (* inline plan text, or... *)
  a_key : string option;  (* ...a disk-cache key to analyze in place *)
  a_seed : int;
  a_tau : float option;
  a_max_depth : int option;
  a_loss : float;
  a_min_transmission : float;
  a_target : Target.t option;  (* backend derived from a registered target *)
}

type request =
  | Ping
  | Stats
  | Shutdown
  | Compile of compile_req
  | Sample of sample_req
  | Analyze of analyze_req

(* The cache key: a content fingerprint over everything that determines
   the artifact. The seed is deliberately excluded — it only picks the
   Haar sample, and the sampled unitary itself is folded in — matching
   the pass cache's canonicalization rule. The target name is folded in
   only when a target is requested, so pre-target disk caches keep
   serving hits for target-less requests. *)
let compile_key ?target ~config ~tau ~effort ~rows ~cols u =
  let open Pass.Fingerprint in
  let h =
    int
      (int
         (string (float (string (string seed "serve.compile.v1") (Config.name config)) tau)
            (Pass.effort_name effort))
         rows)
      cols
  in
  let h =
    match target with
    | None -> h
    | Some (t : Target.t) -> string (string h "target") t.Target.name
  in
  to_hex (mat h u)

exception Bad_request of string

let fail msg = raise (Bad_request msg)

let get_int params key ~default =
  match Json.mem key params with
  | None -> default
  | Some v -> (match Json.int v with Some n -> n | None -> fail (key ^ " must be an integer"))

let get_num params key ~default =
  match Json.mem key params with
  | None -> default
  | Some v -> (match Json.num v with Some x -> x | None -> fail (key ^ " must be a number"))

let get_str params key =
  match Json.mem key params with
  | None -> None
  | Some v -> (match Json.str v with Some s -> Some s | None -> fail (key ^ " must be a string"))

let get_target params =
  match get_str params "target" with
  | None -> None
  | Some name ->
    (match Target.find name with
     | Some t -> Some t
     | None ->
       fail
         (Printf.sprintf "unknown target %s (registered: %s)" name
            (String.concat " | " (Target.names ()))))

let parse_compile params =
  let rows = get_int params "rows" ~default:6 in
  let cols = get_int params "cols" ~default:6 in
  let seed = get_int params "seed" ~default:2024 in
  let tau = get_num params "tau" ~default:0.999 in
  if rows < 1 || cols < 1 then fail "rows/cols must be >= 1";
  let target = get_target params in
  if
    Option.is_some target
    && (Option.is_some (Json.mem "rows" params) || Option.is_some (Json.mem "cols" params))
  then fail "target and rows/cols are mutually exclusive (the target sizes its own device)";
  let config =
    match get_str params "config" with
    | None -> Config.Full_opt
    | Some s ->
      (match Config.of_string s with
       | Some c -> c
       | None -> fail "config must be baseline | rot-cut | decomp-opt | full-opt")
  in
  let effort =
    match get_str params "effort" with
    | None | Some "standard" -> Compiler.Standard
    | Some "fast" -> Compiler.Fast
    | Some _ -> fail "effort must be fast | standard"
  in
  let u =
    match get_str params "unitary" with
    | Some text ->
      (match Unitary.of_string text with
       | Ok u -> u
       | Error (msg, l) -> fail (Printf.sprintf "unitary line %d: %s" l msg))
    | None ->
      let modes = get_int params "modes" ~default:6 in
      if modes < 1 then fail "modes must be >= 1";
      if Option.is_none target && modes > rows * cols then
        fail "modes do not fit on the device";
      Unitary.haar_random (Rng.create seed) modes
  in
  if Option.is_none target && Mat.rows u > rows * cols then
    fail "unitary does not fit on the device";
  let key = compile_key ?target ~config ~tau ~effort ~rows ~cols u in
  Compile { u; config; tau; effort; rows; cols; target; seed; key }

let parse_sample params =
  let s_modes = get_int params "modes" ~default:4 in
  if s_modes < 1 || s_modes > 10 then fail "modes must be in 1..10 (exact simulation)";
  let shots = get_int params "shots" ~default:64 in
  if shots < 1 then fail "shots must be >= 1";
  let chains = get_int params "chains" ~default:4 in
  if chains < 1 then fail "chains must be >= 1";
  let max_photons = get_int params "max_photons" ~default:4 in
  if max_photons < 1 then fail "max_photons must be >= 1";
  Sample
    {
      s_modes;
      s_seed = get_int params "seed" ~default:2024;
      shots;
      chains;
      squeezing = get_num params "squeezing" ~default:0.35;
      max_photons;
    }

let get_opt_num params key =
  match Json.mem key params with
  | None -> None
  | Some v -> (match Json.num v with Some x -> Some x | None -> fail (key ^ " must be a number"))

let parse_analyze params =
  let a_plan =
    match get_str params "plan" with
    | None -> None
    | Some text ->
      (match Plan.of_string text with
       | Ok p -> Some p
       | Error (msg, l) -> fail (Printf.sprintf "plan line %d: %s" l msg))
  in
  let a_key = get_str params "key" in
  if a_plan = None && a_key = None then
    fail "analyze needs a plan (inline text) or a key (disk-cache entry)";
  let a_loss = get_num params "loss" ~default:0. in
  if not (a_loss >= 0. && a_loss <= 1.) then fail "loss must be in [0,1]";
  let a_target = get_target params in
  if
    Option.is_some a_target
    && List.exists (fun k -> Option.is_some (Json.mem k params))
         [ "max_depth"; "loss"; "min_transmission" ]
  then fail "target and manual backend fields (max_depth/loss/min_transmission) are \
             mutually exclusive";
  Analyze
    {
      a_plan;
      a_key;
      a_seed = get_int params "seed" ~default:2024;
      a_tau = get_opt_num params "tau";
      a_max_depth =
        (match get_int params "max_depth" ~default:(-1) with
         | -1 -> None
         | d when d >= 0 -> Some d
         | _ -> fail "max_depth must be >= 0");
      a_loss;
      a_min_transmission = get_num params "min_transmission" ~default:0.;
      a_target;
    }

(* One parsed line: the request id (echoed back verbatim) plus either a
   request or an error reply payload. *)
let parse_line line =
  match Json.parse line with
  | Error msg -> (Json.Null, Error ("parse", msg))
  | Ok v ->
    let id = Option.value ~default:Json.Null (Json.mem "id" v) in
    let params = Option.value ~default:(Json.Obj []) (Json.mem "params" v) in
    (match Option.map Json.str (Json.mem "op" v) with
     | None | Some None -> (id, Error ("bad-request", "missing op field"))
     | Some (Some op) ->
       (try
          match op with
          | "ping" -> (id, Ok Ping)
          | "stats" -> (id, Ok Stats)
          | "shutdown" -> (id, Ok Shutdown)
          | "compile" -> (id, Ok (parse_compile params))
          | "sample" -> (id, Ok (parse_sample params))
          | "analyze" -> (id, Ok (parse_analyze params))
          | _ -> (id, Error ("bad-request", "unknown op " ^ op))
        with Bad_request msg -> (id, Error ("bad-request", msg))))

(* ---------------------------------------------------------------- *)
(* Replies.                                                          *)

let reply_ok id result =
  Json.to_string (Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", result) ])

let reply_error t id code msg =
  t.errors <- t.errors + 1;
  Obs.Counter.incr c_errors;
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("ok", Json.Bool false);
         ("error", Json.Obj [ ("code", Json.Str code); ("message", Json.Str msg) ]);
       ])

let meta_line ?target ~fidelity ~rotations ~modes () =
  let base = Printf.sprintf "fidelity=%h rotations=%d modes=%d" fidelity rotations modes in
  match target with None -> base | Some name -> base ^ " target=" ^ name

(* Both meta generations parse: entries written before targets existed
   lack the trailing [target=] field and come back as [None]. *)
let parse_meta meta =
  try
    Some
      (Scanf.sscanf meta "fidelity=%h rotations=%d modes=%d target=%s"
         (fun f r m tgt -> (f, r, m, Some tgt)))
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    (try
       Some
         (Scanf.sscanf meta "fidelity=%h rotations=%d modes=%d"
            (fun f r m -> (f, r, m, None)))
     with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)

(* The [format] field reports the artifact encoding backing the reply:
   a disk hit echoes the stored object's encoding ("binary"/"text"); a
   compile reports what the write-through will store — "binary" with a
   disk cache attached, "none" without one. The plan/unitary payload
   fields themselves are always the text renderings (JSON strings carry
   no raw bytes); text round-trips are bit-exact, so the payload is
   identical whichever encoding backs it. *)
let compile_result ?target ~cached ~format ~key ~fidelity ~rotations ~modes ~plan
    ~unitary () =
  Json.Obj
    ([
       ("key", Json.Str key);
       ("cached", Json.Str cached);
       ("format", Json.Str format);
       ("modes", Json.Num (float_of_int modes));
       ("rotations", Json.Num (float_of_int rotations));
       ("fidelity", Json.Num fidelity);
       ("plan", Json.Str plan);
       ("unitary", Json.Str unitary);
     ]
     @ match target with None -> [] | Some name -> [ ("target", Json.Str name) ])

(* Everything the reply and the disk write-through need from one
   compile: the typed artifacts for the (binary) store, the text
   renderings for the reply. *)
type compile_out = {
  co_mem_hit : bool;
  co_fidelity : float;
  co_rotations : int;
  co_modes : int;
  co_plan : Plan.t;
  co_unitary : Mat.t;
  co_plan_str : string;
  co_unitary_str : string;
}

(* Run one compile. [use_mem_cache] is false on pool domains: both
   caches are owner-domain state. *)
let do_compile t ~use_mem_cache (req : compile_req) =
  let rng = Rng.create req.seed in
  let cache = if use_mem_cache then Some t.mem else None in
  let c =
    match req.target with
    | Some target ->
      Compiler.compile_for_target ~effort:req.effort ~tau:req.tau ?cache ~rng ~target
        ~config:req.config req.u
    | None ->
      let device = Lattice.create ~rows:req.rows ~cols:req.cols in
      Compiler.compile ~effort:req.effort ~tau:req.tau ?cache ~rng ~device
        ~config:req.config req.u
  in
  let executed = c.Compiler.trace.Bose_lint.Lint.executed in
  let mem_hit = executed <> [] && List.for_all snd executed in
  let plan = c.Compiler.plan in
  let unitary = c.Compiler.mapping.Mapping.permuted in
  {
    co_mem_hit = mem_hit;
    co_fidelity = Compiler.predicted_fidelity c;
    co_rotations = Plan.rotation_count plan;
    co_modes = plan.Plan.modes;
    co_plan = plan;
    co_unitary = unitary;
    co_plan_str = Plan.to_string plan;
    co_unitary_str = Unitary.to_string unitary;
  }

let refresh_cache_gauges t =
  match t.disk with
  | None -> ()
  | Some d ->
    let s = Diskcache.stats d in
    Obs.Gauge.set g_bytes (float_of_int s.Diskcache.bytes);
    Obs.Gauge.set g_entries (float_of_int s.Diskcache.entries);
    Obs.Gauge.set g_evictions (float_of_int s.Diskcache.evictions);
    Obs.Gauge.set g_quarantined (float_of_int s.Diskcache.quarantined);
    Obs.Gauge.set g_mmap_hits (float_of_int s.Diskcache.mmap_hits)

let refresh_hit_rate t =
  let total = t.disk_hits + t.mem_hits + t.misses in
  if total > 0 then
    Obs.Gauge.set g_hit_rate (float_of_int (t.disk_hits + t.mem_hits) /. float_of_int total)

let count_compile t = function
  | `Disk ->
    t.disk_hits <- t.disk_hits + 1;
    Obs.Counter.incr c_disk_hits
  | `Mem ->
    t.mem_hits <- t.mem_hits + 1;
    Obs.Counter.incr c_mem_hits
  | `Miss ->
    t.misses <- t.misses + 1;
    Obs.Counter.incr c_misses

(* Owner-domain completion of a compile miss: write-through to disk,
   count, and render the reply. *)
let finish_compile t id (req : compile_req) outcome =
  match outcome with
  | Error msg -> reply_error t id "internal" msg
  | Ok o ->
    let target = Option.map (fun (t : Target.t) -> t.Target.name) req.target in
    Option.iter
      (fun d ->
         Diskcache.store d ~key:req.key
           ~meta:
             (meta_line ?target ~fidelity:o.co_fidelity ~rotations:o.co_rotations
                ~modes:o.co_modes ())
           ~plan:o.co_plan ~unitary:o.co_unitary)
      t.disk;
    count_compile t (if o.co_mem_hit then `Mem else `Miss);
    reply_ok id
      (compile_result ?target
         ~cached:(if o.co_mem_hit then "mem" else "none")
         ~format:
           (match t.disk with
            | Some _ -> Diskcache.format_to_string Diskcache.Binary
            | None -> "none")
         ~key:req.key ~fidelity:o.co_fidelity ~rotations:o.co_rotations
         ~modes:o.co_modes ~plan:o.co_plan_str ~unitary:o.co_unitary_str ())

let do_sample t (req : sample_req) =
  let rng = Rng.create req.s_seed in
  let u = Unitary.haar_random (Rng.create (req.s_seed + 1)) req.s_modes in
  let state = Gaussian.vacuum req.s_modes in
  for i = 0 to req.s_modes - 1 do
    Gaussian.squeeze state i (Cx.re req.squeezing)
  done;
  Gaussian.interferometer state u;
  let s = Sampler.of_state ~max_photons:req.max_photons state in
  let samples = Sampler.draw_chains ~chains:req.chains ?pool:t.pool rng s req.shots in
  Json.Obj
    [
      ("modes", Json.Num (float_of_int req.s_modes));
      ("shots", Json.Num (float_of_int req.shots));
      ( "samples",
        Json.List
          (List.map
             (fun sample ->
                if sample = Fock.tail then Json.Null
                else Json.List (List.map (fun k -> Json.Num (float_of_int k)) sample))
             samples) );
    ]

(* Static analysis of a plan: either inline text or a disk-cache entry
   analyzed in place. Runs the Flow report plus the lint passes over the
   same subject, so the reply carries both the numbers and any BH11xx
   (or structural) diagnostics. *)
let do_analyze t (req : analyze_req) =
  let plan, unitary, compiled_target =
    match (req.a_plan, req.a_key) with
    | Some p, _ -> (p, None, None)
    | None, Some key ->
      (match t.disk with
       | None -> fail "analyze by key needs a disk cache (start with a cache dir)"
       | Some d ->
         (match Diskcache.find d key with
          | None -> fail ("no cache entry for key " ^ key)
          | Some hit ->
            let stored_target =
              match parse_meta hit.Diskcache.meta with
              | Some (_, _, _, tgt) -> tgt
              | None -> None
            in
            (hit.Diskcache.plan, Some hit.Diskcache.unitary, stored_target)))
    | None, None -> assert false (* parse_analyze rejects this shape *)
  in
  (* Same policy reconstruction as `bosec analyze --tau`: the hard mask
     of the deterministic policy is what a shot actually keeps. *)
  let policy =
    Option.map
      (fun tau ->
         let reference =
           match unitary with
           | Some u when Mat.dims u = (plan.Plan.modes, plan.Plan.modes) -> u
           | Some _ | None -> Plan.reconstruct plan
         in
         Dropout.make_policy (Rng.create req.a_seed) plan reference ~tau)
      req.a_tau
  in
  let backend =
    match req.a_target with
    | Some target -> Flow.backend_of_target ~n:plan.Plan.modes target
    | None ->
      let noise = if req.a_loss > 0. then Noise.uniform req.a_loss else Noise.ideal in
      Flow.backend ?max_depth:req.a_max_depth ~noise
        ~min_transmission:req.a_min_transmission ()
  in
  let kept = Option.map (fun pol -> Dropout.hard_kept pol plan) policy in
  let report = Flow.analyze ?kept ~backend plan in
  let subject =
    {
      Lint.empty with
      Lint.plan = Some plan;
      reference =
        (match unitary with
         | Some u when Mat.dims u = (plan.Plan.modes, plan.Plan.modes) -> unitary
         | _ -> None);
      policy;
      backend = Some backend;
      target_name = Option.map (fun (t : Target.t) -> t.Target.name) req.a_target;
      compiled_target;
    }
  in
  let diags = Lint.run subject in
  let embed s = match Json.parse s with Ok v -> v | Error _ -> Json.Null in
  Json.Obj
    ([
       ("modes", Json.Num (float_of_int plan.Plan.modes));
       ("report", embed (Flow.report_to_json report));
       ("diagnostics", embed (Diag.to_json diags));
       ("errors", Json.Num (float_of_int (Lint.errors diags)));
     ]
     @
     match req.a_target with
     | None -> []
     | Some (t : Target.t) -> [ ("target", Json.Str t.Target.name) ])

let stats_result t =
  let mem = Pipeline.Cache.stats t.mem in
  let disk =
    match t.disk with
    | None -> Json.Null
    | Some d ->
      let s = Diskcache.stats d in
      Json.Obj
        [
          ("dir", Json.Str (Diskcache.dir d));
          ("hits", Json.Num (float_of_int s.Diskcache.hits));
          ("misses", Json.Num (float_of_int s.Diskcache.misses));
          ("entries", Json.Num (float_of_int s.Diskcache.entries));
          ("bytes", Json.Num (float_of_int s.Diskcache.bytes));
          ("evictions", Json.Num (float_of_int s.Diskcache.evictions));
          ("quarantined", Json.Num (float_of_int s.Diskcache.quarantined));
          ("max_bytes", Json.Num (float_of_int s.Diskcache.max_bytes));
          ("mmap_hits", Json.Num (float_of_int s.Diskcache.mmap_hits));
        ]
  in
  Json.Obj
    [
      ("requests", Json.Num (float_of_int t.requests));
      ("errors", Json.Num (float_of_int t.errors));
      ( "compile",
        Json.Obj
          [
            ("disk_hits", Json.Num (float_of_int t.disk_hits));
            ("mem_hits", Json.Num (float_of_int t.mem_hits));
            ("misses", Json.Num (float_of_int t.misses));
          ] );
      ( "mem_cache",
        Json.Obj
          [
            ("hits", Json.Num (float_of_int mem.Pipeline.Cache.hits));
            ("misses", Json.Num (float_of_int mem.Pipeline.Cache.misses));
            ("entries", Json.Num (float_of_int mem.Pipeline.Cache.entries));
          ] );
      ("disk_cache", disk);
      ( "jobs",
        Json.Num (float_of_int (match t.pool with None -> 1 | Some p -> Pool.domains p))
      );
    ]

(* ---------------------------------------------------------------- *)
(* Batch engine. All cache traffic stays on the owner domain; only the
   pure compile work of cache misses fans out to the pool.            *)

let handle_many t lines =
  let t0 = Obs.now () in
  let parsed = Array.of_list (List.map parse_line lines) in
  let n = Array.length parsed in
  t.requests <- t.requests + n;
  Obs.Counter.incr ~by:n c_requests;
  let replies = Array.make n "" in
  (* Phase 1: everything except compile misses, plus disk lookups. *)
  let miss_idx = ref [] in
  Array.iteri
    (fun i (id, req) ->
       match req with
       | Error (code, msg) -> replies.(i) <- reply_error t id code msg
       | Ok Ping -> replies.(i) <- reply_ok id (Json.Obj [ ("pong", Json.Bool true) ])
       | Ok Stats -> replies.(i) <- reply_ok id (stats_result t)
       | Ok Shutdown ->
         t.stop <- true;
         replies.(i) <- reply_ok id (Json.Obj [ ("stopping", Json.Bool true) ])
       | Ok (Sample req) ->
         replies.(i) <-
           (try reply_ok id (do_sample t req)
            with e -> reply_error t id "internal" (Printexc.to_string e))
       | Ok (Analyze req) ->
         replies.(i) <-
           (try reply_ok id (do_analyze t req)
            with
            | Bad_request msg -> reply_error t id "bad-request" msg
            | e -> reply_error t id "internal" (Printexc.to_string e))
       | Ok (Compile req) ->
         (match Option.map (fun d -> Diskcache.find d req.key) t.disk with
          | Some (Some hit) ->
            (match parse_meta hit.Diskcache.meta with
             | Some (fidelity, rotations, modes, target) ->
               count_compile t `Disk;
               replies.(i) <-
                 reply_ok id
                   (compile_result ?target ~cached:"disk"
                      ~format:(Diskcache.format_to_string hit.Diskcache.format)
                      ~key:req.key ~fidelity ~rotations ~modes
                      ~plan:(Plan.to_string hit.Diskcache.plan)
                      ~unitary:(Unitary.to_string hit.Diskcache.unitary) ())
             | None ->
               (* Readable object, unreadable meta: recompile and let
                  the write-through repair the entry. *)
               miss_idx := i :: !miss_idx)
          | Some None | None -> miss_idx := i :: !miss_idx))
    parsed;
  (* Phase 2: compile misses. Two or more fan out cold over the pool;
     a single miss compiles inline through the in-memory pass cache. *)
  let misses = Array.of_list (List.rev !miss_idx) in
  let job i =
    match snd parsed.(i) with
    | Ok (Compile req) -> req
    | _ -> assert false
  in
  (match (t.pool, Array.length misses) with
   | Some pool, m when m > 1 ->
     let outcomes =
       Pool.map pool
         (fun i ->
            try Ok (do_compile t ~use_mem_cache:false (job i))
            with e -> Error (Printexc.to_string e))
         misses
     in
     Array.iteri
       (fun k i ->
          let id, _ = parsed.(i) in
          replies.(i) <- finish_compile t id (job i) outcomes.(k))
       misses
   | _ ->
     Array.iter
       (fun i ->
          let id, _ = parsed.(i) in
          let outcome =
            try Ok (do_compile t ~use_mem_cache:true (job i))
            with e -> Error (Printexc.to_string e)
          in
          replies.(i) <- finish_compile t id (job i) outcome)
       misses);
  refresh_hit_rate t;
  refresh_cache_gauges t;
  Obs.Histo.observe h_batch_s (Obs.now () -. t0);
  Array.to_list replies

let handle_line t line =
  match handle_many t [ line ] with [ r ] -> r | _ -> assert false

(* ---------------------------------------------------------------- *)
(* Transports.                                                       *)

let serve_channels t ic oc =
  let rec loop () =
    if not t.stop then
      match (try Some (input_line ic) with End_of_file -> None) with
      | None -> ()
      | Some line ->
        output_string oc (handle_line t line);
        output_char oc '\n';
        flush oc;
        loop ()
  in
  loop ();
  shutdown t

(* Unix-domain socket server: one select loop, per-client line buffers,
   any number of concurrent clients. Complete lines arriving in the
   same select round (across all clients) form one pool batch. *)
type client = { fd : Unix.file_descr; buf : Buffer.t }

let serve_socket t ~path =
  if Sys.file_exists path then Sys.remove path;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 16;
  let clients = ref [] in
  let close_client c =
    clients := List.filter (fun c' -> c'.fd != c.fd) !clients;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let write_all fd s =
    let b = Bytes.of_string s in
    let rec go off =
      if off < Bytes.length b then
        go (off + Unix.write fd b off (Bytes.length b - off))
    in
    go 0
  in
  let chunk = Bytes.create 65536 in
  (* Drain complete lines out of a client's buffer. *)
  let take_lines c =
    let data = Buffer.contents c.buf in
    let rec go pos acc =
      match String.index_from_opt data pos '\n' with
      | None ->
        Buffer.clear c.buf;
        Buffer.add_substring c.buf data pos (String.length data - pos);
        List.rev acc
      | Some i -> go (i + 1) (String.sub data pos (i - pos) :: acc)
    in
    go 0 []
  in
  while not t.stop do
    let fds = srv :: List.map (fun c -> c.fd) !clients in
    let ready, _, _ =
      try Unix.select fds [] [] 0.25
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (* Gather one batch of lines across every readable client. *)
    let batch = ref [] in
    List.iter
      (fun fd ->
         if fd == srv then begin
           match Unix.accept srv with
           | cfd, _ -> clients := { fd = cfd; buf = Buffer.create 256 } :: !clients
           | exception Unix.Unix_error _ -> ()
         end
         else
           match List.find_opt (fun c -> c.fd == fd) !clients with
           | None -> ()
           | Some c ->
             (match Unix.read c.fd chunk 0 (Bytes.length chunk) with
              | 0 -> close_client c
              | n ->
                Buffer.add_subbytes c.buf chunk 0 n;
                List.iter (fun line -> batch := (c, line) :: !batch) (take_lines c)
              | exception Unix.Unix_error _ -> close_client c))
      ready;
    let batch = List.rev !batch in
    if batch <> [] then begin
      let replies = handle_many t (List.map snd batch) in
      List.iter2
        (fun (c, _) reply ->
           try write_all c.fd (reply ^ "\n")
           with Unix.Unix_error _ -> close_client c)
        batch replies
    end
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !clients;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  (try Sys.remove path with Sys_error _ -> ());
  shutdown t
