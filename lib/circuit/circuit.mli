(** A GBS circuit: state preparation, interferometer gates, optional
    final displacements, Fock measurement (paper Fig. 2). *)

type t

type counts = {
  squeezing : int;
  displacement : int;
  phase_shifter : int;
  beamsplitter : int;
}
(** Per-kind gate totals — the columns of the paper's Table I. *)

val create : modes:int -> t
(** Empty circuit on [modes] qumodes. *)

val modes : t -> int

val add : t -> Gate.t -> t
(** Append a gate. @raise Invalid_argument on invalid qumodes. *)

val add_all : t -> Gate.t list -> t

val gates : t -> Gate.t list
(** Gates in application order. *)

val length : t -> int

val gate_counts : t -> counts

val depth : t -> int
(** Circuit depth under greedy ASAP scheduling: gates acting on disjoint
    qumodes share a layer. 0 for an empty circuit. *)

val two_qumode_pairs : t -> (int * int) list
(** Distinct (min, max) qumode pairs used by beamsplitters. *)

val check_connectivity : (int -> int -> bool) -> t -> (int * int) list
(** [check_connectivity coupled c] returns the beamsplitter pairs not
    allowed by the coupling predicate — [\[\]] means hardware-compatible. *)

val pp : Format.formatter -> t -> unit

val pp_counts : Format.formatter -> counts -> unit
