type t = { modes : int; rev_gates : Gate.t list; length : int }

type counts = {
  squeezing : int;
  displacement : int;
  phase_shifter : int;
  beamsplitter : int;
}

let create ~modes =
  if modes <= 0 then invalid_arg "Circuit.create: need at least one qumode";
  { modes; rev_gates = []; length = 0 }

let modes c = c.modes

let add c gate =
  Gate.validate ~modes:c.modes gate;
  { c with rev_gates = gate :: c.rev_gates; length = c.length + 1 }

let add_all c gates = List.fold_left add c gates

let gates c = List.rev c.rev_gates

let length c = c.length

let gate_counts c =
  let bump acc (gate : Gate.t) =
    match gate with
    | Gate.Squeeze _ -> { acc with squeezing = acc.squeezing + 1 }
    | Gate.Displace _ -> { acc with displacement = acc.displacement + 1 }
    | Gate.Phase _ -> { acc with phase_shifter = acc.phase_shifter + 1 }
    | Gate.Beamsplitter _ -> { acc with beamsplitter = acc.beamsplitter + 1 }
  in
  List.fold_left bump
    { squeezing = 0; displacement = 0; phase_shifter = 0; beamsplitter = 0 }
    c.rev_gates

let depth c =
  (* ASAP layering: a gate lands one layer after the latest layer of any
     qumode it touches. *)
  let ready = Array.make c.modes 0 in
  let total = ref 0 in
  List.iter
    (fun gate ->
       let qumodes = Gate.qumodes gate in
       let layer = 1 + List.fold_left (fun acc k -> max acc ready.(k)) 0 qumodes in
       List.iter (fun k -> ready.(k) <- layer) qumodes;
       total := max !total layer)
    (gates c);
  !total

let two_qumode_pairs c =
  let pairs =
    List.filter_map
      (function
        | Gate.Beamsplitter (k, l, _, _) -> Some (min k l, max k l)
        | Gate.Squeeze _ | Gate.Phase _ | Gate.Displace _ -> None)
      c.rev_gates
  in
  List.sort_uniq compare pairs

let check_connectivity coupled c =
  List.filter (fun (k, l) -> not (coupled k l)) (two_qumode_pairs c)

let pp fmt c =
  Format.fprintf fmt "@[<v>circuit on %d qumodes (%d gates)@," c.modes c.length;
  List.iter (fun g -> Format.fprintf fmt "  %a@," Gate.pp g) (gates c);
  Format.fprintf fmt "@]"

let pp_counts fmt k =
  Format.fprintf fmt "S=%d D=%d R=%d BS=%d" k.squeezing k.displacement k.phase_shifter
    k.beamsplitter
