module Cx = Bose_linalg.Cx

type t =
  | Squeeze of int * Cx.t
  | Phase of int * float
  | Beamsplitter of int * int * float * float
  | Displace of int * Cx.t

let qumodes = function
  | Squeeze (k, _) | Phase (k, _) | Displace (k, _) -> [ k ]
  | Beamsplitter (k, l, _, _) -> [ k; l ]

let is_two_qumode = function
  | Beamsplitter _ -> true
  | Squeeze _ | Phase _ | Displace _ -> false

let validate ~modes gate =
  let check k =
    if k < 0 || k >= modes then
      invalid_arg (Printf.sprintf "Gate.validate: qumode %d out of range [0,%d)" k modes)
  in
  List.iter check (qumodes gate);
  match gate with
  | Beamsplitter (k, l, _, _) when k = l -> invalid_arg "Gate.validate: beamsplitter on a single qumode"
  | Beamsplitter _ | Squeeze _ | Phase _ | Displace _ -> ()

let mzi ~m ~n ~theta ~phi = [ Phase (m, phi); Beamsplitter (m, n, theta, 0.) ]

(* With H = BS(π/4, π/2) (Bogoliubov block (1/√2)[[1, i],[i, 1]]) one
   checks H·diag(e^{iψ},1)·H = e^{i(ψ/2+π/2)}·[[sin ψ/2, cos ψ/2],
   [cos ψ/2, −sin ψ/2]]; choosing ψ = π−2θ and outer phases
   diag(1,1)·…·diag(e^{i(φ−π+θ)}, e^{iθ}) reproduces T(θ,φ) exactly. *)
let mzi2 ~m ~n ~theta ~phi =
  let h = Beamsplitter (m, n, Float.pi /. 4., Float.pi /. 2.) in
  [
    Phase (m, phi -. Float.pi +. theta);
    Phase (n, theta);
    h;
    Phase (m, Float.pi -. (2. *. theta));
    h;
  ]

let pp fmt = function
  | Squeeze (k, a) -> Format.fprintf fmt "S(%a) @@ %d" Cx.pp a k
  | Phase (k, phi) -> Format.fprintf fmt "R(%.4f) @@ %d" phi k
  | Beamsplitter (k, l, theta, phi) -> Format.fprintf fmt "BS(%.4f, %.4f) @@ (%d, %d)" theta phi k l
  | Displace (k, a) -> Format.fprintf fmt "D(%a) @@ %d" Cx.pp a k
