(** Qumode gates of a (Gaussian) Boson sampling program (paper §II-A).

    Parameters follow the paper's definitions:
    - [Squeeze (k, alpha)]    — S(α) = exp(½(α* â² − α â†²)) on qumode k.
    - [Phase (k, phi)]        — R(φ) = exp(iφ â†â) on qumode k.
    - [Beamsplitter (k, l, theta, phi)] —
        BS(θ,φ) = exp(θ(e^{iφ} â_k â_l† − e^{-iφ} â_k† â_l)).
    - [Displace (k, alpha)]   — D(α) = exp(α â† − α* â) on qumode k.

    An MZI block (one step of the interferometer decomposition) is a
    phase shifter R(φ) on qumode m followed by a beamsplitter BS(θ, 0)
    on qumodes (m, n) — the 'MZI 1' realization in the paper's Fig. 2. *)

type t =
  | Squeeze of int * Bose_linalg.Cx.t
  | Phase of int * float
  | Beamsplitter of int * int * float * float
  | Displace of int * Bose_linalg.Cx.t

val qumodes : t -> int list
(** Qumodes the gate acts on. *)

val is_two_qumode : t -> bool

val validate : modes:int -> t -> unit
(** @raise Invalid_argument when a qumode index is out of range or a
    beamsplitter addresses the same qumode twice. *)

val mzi : m:int -> n:int -> theta:float -> phi:float -> t list
(** The two-gate MZI block [R(φ) on m; BS(θ,0) on (m,n)]. *)

val mzi2 : m:int -> n:int -> theta:float -> phi:float -> t list
(** The same T_{m,n}(θ, φ) block realized with two {e fixed} 50:50
    beamsplitters BS(π/4, π/2) and three phase shifters — the 'MZI 2'
    implementation of the paper's Fig. 2, for hardware whose native
    beamsplitter is untunable:
    [T(θ,φ) = H · R_m(π−2θ) · H · R_m(φ−π+θ) · R_n(θ)] with
    [H = BS(π/4, π/2)]. *)

val pp : Format.formatter -> t -> unit
