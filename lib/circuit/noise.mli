(** Hardware noise model: per-gate photon loss.

    Photon loss is the dominant Bosonic-hardware error and the one the
    paper simulates (§VII-A), with beamsplitter error rates over 10×
    those of single-qumode gates (§II-B). A gate with loss rate ℓ
    applies a transmissivity η = 1 − ℓ loss channel to each qumode it
    touches, after the ideal gate. *)

type t = {
  beamsplitter_loss : float;
  single_qumode_loss : float;
}

val ideal : t
(** No loss anywhere. *)

val uniform : float -> t
(** [uniform l] — the paper's sweep parameter: beamsplitters lose at
    rate [l], single-qumode gates at [l /. 10]. *)

val loss_of_gate : t -> Gate.t -> float
(** Loss rate this model assigns to a gate. *)

val validate : t -> unit
(** @raise Invalid_argument unless all rates are within [\[0, 1\]]. *)
