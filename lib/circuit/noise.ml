type t = { beamsplitter_loss : float; single_qumode_loss : float }

let ideal = { beamsplitter_loss = 0.; single_qumode_loss = 0. }

let uniform l = { beamsplitter_loss = l; single_qumode_loss = l /. 10. }

let loss_of_gate t gate =
  if Gate.is_two_qumode gate then t.beamsplitter_loss else t.single_qumode_loss

let validate t =
  let check name x =
    if x < 0. || x > 1. then invalid_arg (Printf.sprintf "Noise.validate: %s out of [0,1]" name)
  in
  check "beamsplitter_loss" t.beamsplitter_loss;
  check "single_qumode_loss" t.single_qumode_loss
