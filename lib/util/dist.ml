(* Internally a sorted association list keyed with the polymorphic
   [compare]; outcome sets in this library (Fock patterns as int lists,
   small tuples) are well-ordered by it and stay small enough that
   list-merge operations dominate nothing. *)

type 'a t = ('a * float) list

let empty = []

let sort_merge pairs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  let rec merge = function
    | [] -> []
    | [ x ] -> [ x ]
    | (a, pa) :: (b, pb) :: rest when compare a b = 0 -> merge ((a, pa +. pb) :: rest)
    | x :: rest -> x :: merge rest
  in
  merge sorted

let of_weights_raw pairs =
  List.iter (fun (_, w) -> if w < 0. then invalid_arg "Dist.of_weights_raw: negative weight") pairs;
  List.filter (fun (_, w) -> w > 0.) (sort_merge pairs)

let total t = List.fold_left (fun acc (_, p) -> acc +. p) 0. t

let normalize t =
  let z = total t in
  if z <= 0. then invalid_arg "Dist.normalize: zero total mass";
  List.map (fun (x, p) -> (x, p /. z)) t

let of_weights pairs = normalize (of_weights_raw pairs)

let of_counts pairs = of_weights (List.map (fun (x, c) ->
    if c < 0 then invalid_arg "Dist.of_counts: negative count";
    (x, float_of_int c)) pairs)

let of_samples samples =
  let table = Hashtbl.create 64 in
  let bump x = Hashtbl.replace table x (1 + Option.value ~default:0 (Hashtbl.find_opt table x)) in
  List.iter bump samples;
  of_counts (Hashtbl.fold (fun x c acc -> (x, c) :: acc) table [])

let prob t x = match List.assoc_opt x t with Some p -> p | None -> 0.

let support t = List.map fst t

let to_list t = t

let map_outcomes f t = of_weights_raw (List.map (fun (x, p) -> (f x, p)) t)

let sample rng t =
  match t with
  | [] -> invalid_arg "Dist.sample: empty distribution"
  | _ ->
    let outcomes = Array.of_list (List.map fst t) in
    let weights = Array.of_list (List.map snd t) in
    outcomes.(Rng.choose_weighted rng weights)

let mix weighted =
  let z = List.fold_left (fun acc (w, _) -> acc +. w) 0. weighted in
  if z <= 0. then invalid_arg "Dist.mix: weights sum to zero";
  sort_merge
    (List.concat_map (fun (w, t) -> List.map (fun (x, p) -> (x, w /. z *. p)) t) weighted)

(* Merge two sorted supports, applying [f p q] pointwise. *)
let fold2 f init p q =
  let rec go acc p q =
    match (p, q) with
    | [], [] -> acc
    | (_, pp) :: p', [] -> go (f acc pp 0.) p' []
    | [], (_, qq) :: q' -> go (f acc 0. qq) [] q'
    | (xa, pp) :: p', (xb, qq) :: q' ->
      let c = compare xa xb in
      if c = 0 then go (f acc pp qq) p' q'
      else if c < 0 then go (f acc pp 0.) p' q
      else go (f acc 0. qq) p q'
  in
  go init p q

let xlogx_ratio p q = if p <= 0. then 0. else if q <= 0. then infinity else p *. log (p /. q)

let kl p q = fold2 (fun acc pp qq -> acc +. xlogx_ratio pp qq) 0. p q

let jsd p q =
  let term acc pp qq =
    let m = (pp +. qq) /. 2. in
    acc +. (xlogx_ratio pp m /. 2.) +. (xlogx_ratio qq m /. 2.)
  in
  (* Clamp tiny negative rounding residue. *)
  Float.max 0. (fold2 term 0. p q)

let tvd p q = fold2 (fun acc pp qq -> acc +. (Float.abs (pp -. qq) /. 2.)) 0. p q

let fidelity p q =
  let s = fold2 (fun acc pp qq -> acc +. sqrt (pp *. qq)) 0. p q in
  s *. s
