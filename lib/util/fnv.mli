(** FNV-1a 64-bit hashing — the checksum primitive of the binary
    artifact format (docs/SERVING.md, object layout v2).

    Fold bytes into a running hash starting from {!seed}:
    [string seed s] is the hash of [s]. The constants are the standard
    FNV-1a offset basis and prime, matching both [Pass.Fingerprint]
    (which keeps an independent copy — its values are persisted cache
    keys) and the C-side implementation used on mmap-read buffers. *)

val seed : int64
(** The FNV-1a 64-bit offset basis, [0xcbf29ce484222325]. *)

val prime : int64
(** The FNV-1a 64-bit prime, [0x100000001b3]. *)

val byte : int64 -> int -> int64
(** [byte h b] folds the low 8 bits of [b] into [h]. *)

val string : int64 -> string -> int64

val substring : int64 -> string -> pos:int -> len:int -> int64
(** @raise Invalid_argument when the range is out of bounds. *)
