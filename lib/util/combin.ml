let factorial n =
  if n < 0 then invalid_arg "Combin.factorial: negative";
  let rec go acc i = if i > n then acc else go (acc *. float_of_int i) (i + 1) in
  go 1. 2

let log_factorial n =
  if n < 0 then invalid_arg "Combin.log_factorial: negative";
  let rec go acc i = if i > n then acc else go (acc +. log (float_of_int i)) (i + 1) in
  go 0. 2

let binomial n k =
  if k < 0 || k > n then 0.
  else begin
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then acc
      else go (acc *. float_of_int (n - k + i) /. float_of_int i) (i + 1)
    in
    go 1. 1
  end

let rec compositions n k =
  if k <= 0 then if n = 0 then [ [] ] else []
  else if k = 1 then [ [ n ] ]
  else
    List.concat_map
      (fun first -> List.map (fun rest -> first :: rest) (compositions (n - first) (k - 1)))
      (List.init (n + 1) (fun i -> i))

let patterns_up_to ~modes ~max_photons =
  List.concat_map (fun n -> compositions n modes) (List.init (max_photons + 1) (fun i -> i))

let perfect_matchings n =
  if n mod 2 = 1 then []
  else begin
    let rec go vertices =
      match vertices with
      | [] -> [ [] ]
      | v :: rest ->
        List.concat_map
          (fun partner ->
             let remaining = List.filter (fun x -> x <> partner) rest in
             List.map (fun m -> (v, partner) :: m) (go remaining))
          rest
    in
    go (List.init n (fun i -> i))
  end

let pattern_total = List.fold_left ( + ) 0
