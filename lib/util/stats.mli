(** Small statistics toolbox used by the benchmarks and applications. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for arrays of length < 2. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient of two equally-long samples.
    Returns 0 when either sample has zero variance.
    @raise Invalid_argument on length mismatch or length < 2. *)

val median : float array -> float
(** Median (average of the two middle elements for even length).
    Does not mutate its argument. @raise Invalid_argument on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation. *)

val histogram : min:float -> max:float -> bins:int -> float array -> int array
(** Fixed-width histogram; samples outside [\[min,max\]] are clamped into the
    first/last bin. @raise Invalid_argument if [bins <= 0] or [max <= min]. *)
