let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.pearson: length mismatch";
  if n < 2 then invalid_arg "Stats.pearson: need at least two samples";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0. || !syy = 0. then 0. else !sxy /. sqrt (!sxx *. !syy)

let sorted_copy xs =
  let a = Array.copy xs in
  Array.sort compare a;
  a

let median xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.median: empty array";
  let a = sorted_copy xs in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let a = sorted_copy xs in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then a.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let histogram ~min ~max ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if max <= min then invalid_arg "Stats.histogram: empty range";
  let counts = Array.make bins 0 in
  let width = (max -. min) /. float_of_int bins in
  let bucket x =
    let i = int_of_float ((x -. min) /. width) in
    if i < 0 then 0 else if i >= bins then bins - 1 else i
  in
  Array.iter (fun x -> counts.(bucket x) <- counts.(bucket x) + 1) xs;
  counts
