(* FNV-1a, 64-bit. The binary artifact codec (Plan/Unitary v2) trails
   every object with this checksum, and the disk cache validates it on
   both the string and the mmap read paths — so the three
   implementations (here, the C stub over mapped buffers in
   mat_stubs.c, and Pass.Fingerprint's content hashing) must agree on
   the classic offset-basis/prime pair. Pass.Fingerprint keeps its own
   copy on purpose: its hashes are persisted cache keys and must not
   drift if this module ever changes. *)

let seed = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let substring h s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Fnv.substring: range out of bounds";
  let h = ref h in
  for i = pos to pos + len - 1 do
    h := byte !h (Char.code (String.unsafe_get s i))
  done;
  !h

let string h s = substring h s ~pos:0 ~len:(String.length s)
