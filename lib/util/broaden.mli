(** Spectral line broadening, used to visualize sampled vibronic spectra
    (the green Lorentzian curve of the paper's Fig. 11d). *)

val lorentzian : gamma:float -> x0:float -> float -> float
(** Normalized Lorentzian line shape centered at [x0] with half-width at
    half-maximum [gamma], evaluated at the given point. *)

val broaden :
  gamma:float -> grid:float array -> (float * float) list -> float array
(** [broaden ~gamma ~grid sticks] convolves weighted stick positions
    [(energy, weight)] with a Lorentzian and evaluates on [grid]. *)

val grid : min:float -> max:float -> points:int -> float array
(** Evenly spaced evaluation grid (inclusive endpoints, [points >= 2]). *)
