(* xoshiro256** with splitmix64 seeding, after Blackman & Vigna. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let x = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 x;
  t.s3 <- rotl t.s3 45;
  result

let of_key key =
  let state = ref key in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let split t n =
  if n < 0 then invalid_arg "Rng.split: negative stream count";
  (* Children are derived in index order from consecutive parent draws,
     so the stream assignment is a pure function of the parent state —
     never of evaluation order. *)
  let children = Array.make n t in
  for i = 0 to n - 1 do
    children.(i) <- of_key (bits64 t)
  done;
  children

let same a b = a == b

(* Take the top 53 bits for a uniform double in [0, 1). *)
let uniform t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float t bound =
  if not (bound > 0.) then invalid_arg "Rng.float: bound must be positive";
  uniform t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let mask =
    let rec widen m = if Int64.unsigned_compare m bound64 >= 0 then m else widen Int64.(logor (shift_left m 1) 1L) in
    widen 1L
  in
  let rec draw () =
    let v = Int64.logand (bits64 t) mask in
    if Int64.unsigned_compare v bound64 < 0 then Int64.to_int v else draw ()
  in
  draw ()

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let gaussian_pair t =
  (* Box-Muller; guard against log 0. *)
  let rec nonzero () =
    let u = uniform t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = uniform t in
  let r = sqrt (-2. *. log u1) and theta = 2. *. Float.pi *. u2 in
  (r *. cos theta, r *. sin theta)

let gaussian t = fst (gaussian_pair t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose_weighted t w =
  let total = Array.fold_left (fun acc x ->
      if x < 0. then invalid_arg "Rng.choose_weighted: negative weight";
      acc +. x) 0. w
  in
  if total <= 0. then invalid_arg "Rng.choose_weighted: weights sum to zero";
  let target = float t total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

(* Efraimidis-Spirakis: drawing the m largest keys log(u_i)/w_i is
   distributionally identical to sequential weighted sampling without
   replacement, and runs in O(n log n) instead of O(m·n). Zero-weight
   indices get key -∞ with a uniform tie-break, so they are only chosen
   once every positive weight is exhausted. *)
let sample_without_replacement t w m =
  let n = Array.length w in
  if m > n then invalid_arg "Rng.sample_without_replacement: m > n";
  Array.iter
    (fun x -> if x < 0. then invalid_arg "Rng.sample_without_replacement: negative weight")
    w;
  let keys =
    Array.init n (fun i ->
        let u = uniform t in
        let tie = uniform t in
        let key = if w.(i) > 0. then log (Float.max u 1e-300) /. w.(i) else neg_infinity in
        (key, tie, i))
  in
  Array.sort (fun (ka, ta, _) (kb, tb, _) -> compare (kb, tb) (ka, ta)) keys;
  List.init m (fun r -> let _, _, i = keys.(r) in i)
