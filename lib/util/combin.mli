(** Combinatorial helpers for Fock-space bookkeeping. *)

val factorial : int -> float
(** [factorial n] as a float (exact up to n = 170 overflow threshold).
    @raise Invalid_argument on negative input. *)

val log_factorial : int -> float
(** Natural log of n! via accumulated sums (exact summation, no Stirling). *)

val binomial : int -> int -> float
(** [binomial n k] = C(n, k); 0 when k < 0 or k > n. *)

val compositions : int -> int -> int list list
(** [compositions n k] lists all ways to write [n] as an ordered sum of
    [k] non-negative integers — i.e. all k-mode Fock patterns with exactly
    [n] photons. Length C(n+k-1, k-1). *)

val patterns_up_to : modes:int -> max_photons:int -> int list list
(** All Fock patterns over [modes] qumodes with total photon number
    between 0 and [max_photons], ordered by total then lexicographically. *)

val perfect_matchings : int -> (int * int) list list
(** All perfect matchings of the complete graph on [n] vertices
    (n even; [] when n is odd or 0 gives [[ ]]). Used to brute-force
    hafnians in tests. *)

val pattern_total : int list -> int
(** Sum of a Fock pattern. *)
