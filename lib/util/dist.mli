(** Discrete probability distributions over arbitrary outcomes.

    A distribution is a map from outcomes to probabilities. The GBS
    experiments compare sampled Fock-pattern distributions against the
    ideal noise-free distribution with the Jensen-Shannon divergence
    (the paper's application-independent metric, §VII-A). *)

type 'a t
(** Distribution over outcomes of type ['a], compared with [compare]. *)

val empty : 'a t

val of_counts : ('a * int) list -> 'a t
(** Normalized distribution from raw counts. Counts must be non-negative
    and not all zero. *)

val of_weights : ('a * float) list -> 'a t
(** Normalized distribution from non-negative weights. Duplicate outcomes
    accumulate. *)

val of_samples : 'a list -> 'a t
(** Empirical distribution of a sample list. *)

val prob : 'a t -> 'a -> float
(** Probability of an outcome (0 if absent). *)

val support : 'a t -> 'a list
(** Outcomes with positive probability, in increasing order. *)

val to_list : 'a t -> ('a * float) list
(** All (outcome, probability) pairs in increasing outcome order. *)

val total : 'a t -> float
(** Sum of probabilities (1.0 up to rounding for normalized inputs;
    may be < 1 for truncated distributions built with {!of_weights_raw}). *)

val of_weights_raw : ('a * float) list -> 'a t
(** Like {!of_weights} but without normalization — used for truncated
    distributions where the missing tail mass is meaningful. *)

val normalize : 'a t -> 'a t
(** Rescale to total mass 1. @raise Invalid_argument on zero total mass. *)

val map_outcomes : ('a -> 'b) -> 'a t -> 'b t
(** Push forward through a function, merging collided outcomes. *)

val sample : Rng.t -> 'a t -> 'a
(** Draw one outcome. @raise Invalid_argument on an empty distribution. *)

val mix : (float * 'a t) list -> 'a t
(** Weighted mixture Σ w_k·p_k. Weights must be non-negative; they are
    normalized to sum to 1 first. Used to average the per-shot output
    distributions of probabilistic dropout circuits. *)

val jsd : 'a t -> 'a t -> float
(** Jensen-Shannon divergence in nats, in [\[0, ln 2\]]. Symmetric;
    well-defined even when the supports differ. *)

val kl : 'a t -> 'a t -> float
(** Kullback-Leibler divergence D(p || q) in nats. [infinity] when [p]
    puts mass where [q] does not. *)

val tvd : 'a t -> 'a t -> float
(** Total variation distance, in [\[0, 1\]]. *)

val fidelity : 'a t -> 'a t -> float
(** Classical (Bhattacharyya) fidelity [(Σ √(p q))²]. *)
