let lorentzian ~gamma ~x0 x =
  let d = x -. x0 in
  gamma /. (Float.pi *. ((d *. d) +. (gamma *. gamma)))

let broaden ~gamma ~grid sticks =
  Array.map
    (fun x ->
       List.fold_left (fun acc (x0, w) -> acc +. (w *. lorentzian ~gamma ~x0 x)) 0. sticks)
    grid

let grid ~min ~max ~points =
  if points < 2 then invalid_arg "Broaden.grid: need at least two points";
  let step = (max -. min) /. float_of_int (points - 1) in
  Array.init points (fun i -> min +. (step *. float_of_int i))
