(** Deterministic pseudo-random number generation.

    All randomized components of the library thread an explicit [Rng.t]
    so that every experiment is reproducible from a single integer seed.
    The generator is xoshiro256**, seeded through splitmix64 as its
    authors recommend. *)

type t
(** Mutable generator state.

    A [t] is {b single-stream}: it must only be advanced from one
    domain (or pool task) at a time. Concurrent draws from a shared
    state race on the four state words and destroy reproducibility.
    Give each parallel chain its own stream with {!split} (the
    [bose_par] call sites assert pairwise-distinct states in dev
    builds, and the lint engine flags shared states as BH1001). *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. Two generators
    built from the same seed produce identical streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> int -> t array
(** [split rng n] derives [n] fresh generators from [rng], advancing
    [rng] by exactly [n] raw draws. Children are keyed by consecutive
    parent draws in index order, so for a fixed parent state the
    resulting streams are a deterministic function of [n] alone —
    the contract parallel samplers rely on to make chain [i]'s output
    independent of how chains are scheduled across domains. Streams of
    the parent and every child are statistically independent
    (splitmix64-seeded, as {!create}). *)

val of_key : int64 -> t
(** [of_key k] builds a generator from a full 64-bit key (splitmix64
    expansion, the [int]-seeded {!create} generalized). Used to derive
    content-keyed streams, e.g. one stream per batch-compile job keyed
    by the job's fingerprint. *)

val same : t -> t -> bool
(** Physical identity of generator states: [same a b] is [true] iff
    advancing [a] advances [b]. The aliasing predicate behind the
    BH1001 lint diagnostic — two pool tasks handed [same] states race
    on one stream. [copy a] is never [same] as [a]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val gaussian_pair : t -> float * float
(** Two independent standard normal deviates. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose_weighted : t -> float array -> int
(** [choose_weighted rng w] samples an index with probability proportional
    to [w.(i)]. Weights must be non-negative with a positive sum.
    @raise Invalid_argument on an all-zero or negative weight vector. *)

val sample_without_replacement : t -> float array -> int -> int list
(** [sample_without_replacement rng w m] draws [m] distinct indices, each
    round proportionally to the remaining weights. Indices with zero weight
    are drawn only after all positive-weight indices are exhausted.
    @raise Invalid_argument if [m] exceeds the number of indices. *)
