(** Deterministic pseudo-random number generation.

    All randomized components of the library thread an explicit [Rng.t]
    so that every experiment is reproducible from a single integer seed.
    The generator is xoshiro256**, seeded through splitmix64 as its
    authors recommend. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. Two generators
    built from the same seed produce identical streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split rng] derives a new generator from [rng], advancing [rng].
    Streams of the parent and child are statistically independent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val gaussian_pair : t -> float * float
(** Two independent standard normal deviates. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose_weighted : t -> float array -> int
(** [choose_weighted rng w] samples an index with probability proportional
    to [w.(i)]. Weights must be non-negative with a positive sum.
    @raise Invalid_argument on an all-zero or negative weight vector. *)

val sample_without_replacement : t -> float array -> int -> int list
(** [sample_without_replacement rng w m] draws [m] distinct indices, each
    round proportionally to the remaining weights. Indices with zero weight
    are drawn only after all positive-weight indices are exhausted.
    @raise Invalid_argument if [m] exceeds the number of indices. *)
